package netchaos

import (
	"bytes"
	"errors"
	"io"
	"net"
	"testing"
	"time"

	"msqueue/internal/wire"
)

// tcpPair returns the two ends of one loopback TCP connection.
func tcpPair(t *testing.T) (client, server net.Conn) {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	accepted := make(chan net.Conn, 1)
	go func() {
		c, err := l.Accept()
		if err != nil {
			return
		}
		accepted <- c
	}()
	c, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	s := <-accepted
	t.Cleanup(func() { c.Close(); s.Close() })
	return c, s
}

// TestDeterministicDecisionStream: two injectors with the same seed and
// rates produce identical fault sequences — the replay property every
// printed seed relies on.
func TestDeterministicDecisionStream(t *testing.T) {
	mk := func() *Injector {
		cfg := Config{Seed: 42}
		cfg.Rates[Reset] = 0.1
		cfg.Rates[TornWrite] = 0.2
		cfg.Rates[Corrupt] = 0.2
		return New(cfg)
	}
	a, b := mk(), mk()
	var injected int
	for i := 0; i < 4096; i++ {
		fa, fb := a.draw(), b.draw()
		if fa != fb {
			t.Fatalf("draw %d: %v vs %v from the same seed", i, fa, fb)
		}
		if fa != None {
			injected++
		}
	}
	if injected == 0 {
		t.Fatal("no fault injected in 4096 draws at ~50% total rate")
	}
	if a.Total() != int64(injected) {
		t.Fatalf("Total = %d, want %d", a.Total(), injected)
	}

	// A different seed must produce a different sequence (overwhelmingly).
	c := New(Config{Seed: 43, Rates: a.cfg.Rates})
	same := 0
	for i := 0; i < 4096; i++ {
		if New(Config{Seed: 42, Rates: a.cfg.Rates}).draw() == c.draw() {
			same++
		}
	}
	if same == 4096 {
		t.Fatal("seeds 42 and 43 produced identical sequences")
	}
}

// TestTornWriteReassembles: a write split at a fault-chosen byte is
// invisible to a frame reader — io.ReadFull reassembles, nothing errors.
func TestTornWriteReassembles(t *testing.T) {
	cw, sr := tcpPair(t)
	cfg := Rate(TornWrite, 1)
	cfg.Seed = 7
	cfg.MaxLatency = 200 * time.Microsecond
	in := New(cfg)
	wrapped := in.WrapConn(cw)

	const frames = 20
	errCh := make(chan error, 1)
	go func() {
		for i := 0; i < frames; i++ {
			if err := wire.Write(wrapped, wire.EnqFrame(uint64(i), int64(i*3))); err != nil {
				errCh <- err
				return
			}
		}
		errCh <- nil
	}()

	var buf []byte
	for i := 0; i < frames; i++ {
		f, nb, err := wire.Read(sr, buf)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		buf = nb
		if f.ID != uint64(i) {
			t.Fatalf("frame %d arrived with id %d", i, f.ID)
		}
	}
	if err := <-errCh; err != nil {
		t.Fatalf("writer: %v", err)
	}
	if in.Count(TornWrite) == 0 {
		t.Fatal("no torn write injected at rate 1")
	}
}

// TestCorruptionIsDetectedNeverMisparsed: every frame written through a
// corrupt-always connection must surface at the reader as an error —
// checksum, magic, length or truncation — never as a parsed frame with
// altered contents.
func TestCorruptionIsDetectedNeverMisparsed(t *testing.T) {
	cw, sr := tcpPair(t)
	cfg := Rate(Corrupt, 1)
	cfg.Seed = 11
	in := New(cfg)
	wrapped := in.WrapConn(cw)

	payload := bytes.Repeat([]byte{0x5a}, 64)
	go func() {
		wire.Write(wrapped, wire.Frame{Type: wire.Enq, ID: 1, Payload: payload})
		cw.Close()
	}()

	f, _, err := wire.Read(sr, nil)
	if err == nil {
		t.Fatalf("corrupted frame parsed as %v id=%d", f.Type, f.ID)
	}
	if in.Count(Corrupt) == 0 {
		t.Fatal("no corruption injected at rate 1")
	}
}

// TestMidFrameResetTearsCleanly: the reader of a frame cut by a
// mid-frame reset sees a truncation or connection error, not a frame.
func TestMidFrameResetTearsCleanly(t *testing.T) {
	cw, sr := tcpPair(t)
	cfg := Rate(MidFrameReset, 1)
	cfg.Seed = 13
	in := New(cfg)
	wrapped := in.WrapConn(cw)

	_, werr := wrapped.Write(mustEncode(t, wire.EnqFrame(9, 99)))
	if werr == nil {
		t.Fatal("mid-frame reset reported a clean write")
	}

	f, _, err := wire.Read(sr, nil)
	if err == nil {
		t.Fatalf("torn frame parsed as %v id=%d", f.Type, f.ID)
	}
	if err != io.ErrUnexpectedEOF && !errors.Is(err, io.EOF) {
		// Depending on how much of the header survived, the reader sees a
		// truncated stream or a clean close — both are teardown, never a
		// frame.
		t.Logf("torn frame surfaced as %v (acceptable: any error)", err)
	}
}

// TestBlackholeHonorsDeadlineAndClose: a blackholed operation blocks
// until its deadline fires (as a net.Error timeout) and the connection
// stays silent afterwards; Close releases a stalled operation.
func TestBlackholeHonorsDeadlineAndClose(t *testing.T) {
	cw, _ := tcpPair(t)
	cfg := Rate(Blackhole, 1)
	cfg.Seed = 17
	in := New(cfg)
	wrapped := in.WrapConn(cw)

	wrapped.SetReadDeadline(time.Now().Add(30 * time.Millisecond))
	start := time.Now()
	_, err := wrapped.Read(make([]byte, 16))
	var ne net.Error
	if !errors.As(err, &ne) || !ne.Timeout() {
		t.Fatalf("blackholed read = %v, want net.Error timeout", err)
	}
	if time.Since(start) < 20*time.Millisecond {
		t.Fatalf("blackholed read returned after %v, before the deadline", time.Since(start))
	}

	// The connection is sticky-silent: a write also stalls, and Close
	// releases it.
	wrapped.SetWriteDeadline(time.Time{}) // no deadline: only Close can release
	released := make(chan error, 1)
	go func() {
		_, err := wrapped.Write([]byte("x"))
		released <- err
	}()
	select {
	case err := <-released:
		t.Fatalf("write on a blackholed conn returned early: %v", err)
	case <-time.After(20 * time.Millisecond):
	}
	wrapped.Close()
	select {
	case err := <-released:
		if err == nil {
			t.Fatal("released write reported success on a blackholed conn")
		}
	case <-time.After(time.Second):
		t.Fatal("Close did not release the stalled write")
	}
}

// TestResetClosesImmediately: a Reset draw kills the connection before
// any bytes move, and the peer observes the close.
func TestResetClosesImmediately(t *testing.T) {
	cw, sr := tcpPair(t)
	cfg := Rate(Reset, 1)
	cfg.Seed = 19
	in := New(cfg)
	wrapped := in.WrapConn(cw)

	if _, err := wrapped.Write([]byte("hello")); err == nil {
		t.Fatal("write on reset-always conn succeeded")
	}
	sr.SetReadDeadline(time.Now().Add(time.Second))
	if n, err := sr.Read(make([]byte, 8)); err == nil {
		t.Fatalf("peer read %d bytes from a reset conn", n)
	}
}

// TestDisableQuiesces: after Disable, operations pass through untouched —
// the drain phase of a sweep must see a clean network.
func TestDisableQuiesces(t *testing.T) {
	cw, sr := tcpPair(t)
	cfg := Rate(Reset, 1)
	cfg.Seed = 23
	in := New(cfg)
	in.Disable()
	wrapped := in.WrapConn(cw)

	go wire.Write(wrapped, wire.EnqFrame(5, 55))
	f, _, err := wire.Read(sr, nil)
	if err != nil || f.ID != 5 {
		t.Fatalf("Read through disabled injector = %v, %v; want clean frame id=5", f, err)
	}
	if in.Total() != 0 {
		t.Fatalf("disabled injector injected %d fault(s)", in.Total())
	}
}

// TestListenerAndDialerWrap: both attachment points produce wrapped
// connections drawing from the same stream.
func TestListenerAndDialerWrap(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	cfg := Rate(Latency, 1)
	cfg.Seed = 29
	cfg.MaxLatency = 100 * time.Microsecond
	in := New(cfg)
	wl := in.WrapListener(l)

	go func() {
		c, err := wl.Accept()
		if err != nil {
			return
		}
		defer c.Close()
		io.Copy(c, c) // echo
	}()

	dial := in.Dialer(func() (net.Conn, error) { return net.Dial("tcp", l.Addr().String()) })
	c, err := dial()
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Write([]byte("ping")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4)
	if _, err := io.ReadFull(c, buf); err != nil || string(buf) != "ping" {
		t.Fatalf("echo through wrapped pair = %q, %v", buf, err)
	}
	if in.Count(Latency) == 0 {
		t.Fatal("no latency injected at rate 1 across both wrappers")
	}
}

func mustEncode(t *testing.T, f wire.Frame) []byte {
	t.Helper()
	var b bytes.Buffer
	if err := wire.Write(&b, f); err != nil {
		t.Fatal(err)
	}
	return b.Bytes()
}

package explore

import "fmt"

// This file declares the shared-location footprint of every event of every
// modelled machine. The DPOR engine (dpor.go) decides whether two
// transitions commute purely from these declarations, so the one soundness
// rule is: an event's declared footprint must cover every shared location
// its step-function case can read or write, *including the inputs of the
// conditions that decide what it does*. A conditional write whose condition
// reads a location must declare that read even on the branch that writes
// nothing — otherwise an earlier transition that flips the condition would
// be treated as independent and the flipped branch never explored.
// Over-approximation is always safe (it only costs reduction); any
// under-approximation is a soundness bug, and the cross-check tests
// (dpor_test.go) compare DPOR verdicts against full enumeration to catch
// one.

// locKind names a class of shared location.
type locKind uint8

const (
	lkHead   locKind = iota + 1 // the queue's Head word
	lkTail                      // the queue's Tail word
	lkNext                      // a node's next word (idx = node)
	lkValue                     // a node's value cell (idx = node)
	lkRefct                     // a node's Valois reference counter (idx = node)
	lkFree                      // the free-list (one location: pop and push are single events)
	lkHLock                     // the two-lock machine's head lock
	lkTLock                     // the two-lock machine's tail lock
	lkHist                      // the history: invokes read it, returns write it
	lkEpGlobal                  // the epoch domain's global epoch word
	lkEpPin                     // a participant's pin word (idx = process)
	lkEpLimbo                   // a participant's limbo buckets (idx = process)
	lkRHead                     // the ring's head reservation counter
	lkRTail                     // the ring's tail reservation counter
	lkRThresh                   // the ring's threshold counter
	lkRSlot                     // a ring slot word (idx = slot)
)

// loc is one shared location. idx disambiguates within a kind (node index,
// participant index, slot index); -1 for singleton kinds.
type loc struct {
	kind locKind
	idx  int32
}

// access is the footprint of one transition.
type access struct {
	reads  []loc
	writes []loc
}

func (a *access) rd(k locKind, idx int32) { a.reads = append(a.reads, loc{k, idx}) }
func (a *access) wr(k locKind, idx int32) { a.writes = append(a.writes, loc{k, idx}) }

// rw declares a CAS-shaped access: the word is read (the comparison) and
// potentially written, whichever way the comparison goes.
func (a *access) rw(k locKind, idx int32) { a.rd(k, idx); a.wr(k, idx) }

// conflicts reports whether the two footprints fail to commute: some
// location is written by one and touched by the other. History writes are
// exempt from write-write conflicts: two adjacent returns with no invoke
// between them order response timestamps, and the linearizability verdict
// depends only on the precedence relation, which adjacent-swap cannot
// change. A return and an invoke (write vs read) DO conflict — swapping
// them would erase a real-time precedence edge, exactly the reordering that
// masks violations in the flawed comparators.
func conflicts(a, b access) bool {
	for _, w := range a.writes {
		for _, w2 := range b.writes {
			if w == w2 && w.kind != lkHist {
				return true
			}
		}
		for _, r := range b.reads {
			if w == r {
				return true
			}
		}
	}
	for _, r := range a.reads {
		for _, w := range b.writes {
			if r == w {
				return true
			}
		}
	}
	return false
}

// allocAccess is the footprint of a free-list pop: the pop itself, plus the
// popped node's field resets. The node written is the current stack top —
// any earlier transition that changes the top conflicts on lkFree, so
// computing it from the current state is exact, not a race.
func allocAccess(s *State, a *access, refct bool) {
	a.rw(lkFree, -1)
	if len(s.Free) > 0 {
		top := s.Free[len(s.Free)-1]
		a.wr(lkNext, top)
		a.wr(lkValue, top)
		if refct {
			a.wr(lkRefct, top)
		}
	}
}

// nextAccess predicts the footprint of p's next step in state s without
// mutating either. The pcIdle dispatch executes the first event of the next
// operation in the same step, so its footprint is that event's plus the
// invoke's history read; events that (may) complete an operation add the
// return's history write.
func nextAccess(s *State, p *Proc) access {
	var a access
	cpc := p.pc
	if cpc == pcIdle {
		a.rd(lkHist, -1) // the invoke
		cpc = p.entryPC()
	}

	switch cpc {
	// --- MS ---
	case msEnqAlloc:
		allocAccess(s, &a, false)
	case msEnqReadTail, msEnqCheck:
		a.rd(lkTail, -1)
	case msEnqReadNext:
		a.rd(lkNext, p.tail.Idx)
	case msEnqCASNext:
		a.rw(lkNext, p.tail.Idx)
	case msEnqHelp:
		a.rw(lkTail, -1)
	case msEnqSwing:
		a.rw(lkTail, -1)
		a.wr(lkHist, -1)
	case msDeqReadHead:
		a.rd(lkHead, -1)
	case msDeqReadTail:
		a.rd(lkTail, -1)
	case msDeqReadNext:
		a.rd(lkNext, p.head.Idx)
	case msDeqCheck:
		a.rd(lkHead, -1)
		a.wr(lkHist, -1) // may complete (empty)
	case msDeqHelp:
		a.rw(lkTail, -1)
	case msDeqReadValue:
		a.rd(lkValue, p.next.Idx)
	case msDeqCASHead:
		a.rw(lkHead, -1)
	case msDeqFree:
		a.wr(lkFree, -1)
		a.wr(lkHist, -1)

	// --- Stone ---
	case stEnqAlloc:
		allocAccess(s, &a, false)
	case stEnqReadTail:
		a.rd(lkTail, -1)
	case stEnqCASTail:
		a.rw(lkTail, -1)
	case stEnqLink:
		a.rw(lkNext, p.tail.Idx)
		a.wr(lkHist, -1)
	case stDeqReadHead:
		a.rd(lkHead, -1)
	case stDeqReadNext:
		a.rd(lkNext, p.head.Idx)
		a.wr(lkHist, -1) // may complete (empty)
	case stDeqReadValue:
		a.rd(lkValue, p.next.Idx)
	case stDeqCASHead:
		a.rw(lkHead, -1)
		a.wr(lkFree, -1)
		a.wr(lkHist, -1)

	// --- Mellor-Crummey ---
	case mcEnqAlloc:
		allocAccess(s, &a, false)
	case mcEnqSwap:
		a.rw(lkTail, -1)
	case mcEnqLink:
		a.rw(lkNext, p.prev.Idx)
		a.wr(lkHist, -1)
	case mcDeqReadHead:
		a.rd(lkHead, -1)
	case mcDeqReadNext:
		a.rd(lkNext, p.head.Idx)
	case mcDeqCheckTail:
		a.rd(lkTail, -1)
		a.wr(lkHist, -1) // may complete (empty)
	case mcDeqReadValue:
		a.rd(lkValue, p.next.Idx)
	case mcDeqCASHead:
		a.rw(lkHead, -1)
		a.wr(lkHist, -1)

	// --- two-lock ---
	case tlEnqAlloc:
		allocAccess(s, &a, false)
	case tlEnqLock:
		a.rw(lkTLock, -1)
	case tlEnqReadTail:
		a.rd(lkTail, -1)
	case tlEnqLink:
		a.rw(lkNext, p.tail.Idx)
	case tlEnqSwing:
		a.rw(lkTail, -1)
	case tlEnqUnlock:
		a.wr(lkTLock, -1)
		a.wr(lkHist, -1)
	case tlDeqLock:
		a.rw(lkHLock, -1)
	case tlDeqReadHead:
		a.rd(lkHead, -1)
	case tlDeqReadNext:
		a.rd(lkNext, p.head.Idx)
	case tlDeqEmptyUnlock:
		a.wr(lkHLock, -1)
		a.wr(lkHist, -1)
	case tlDeqReadValue:
		a.rd(lkValue, p.next.Idx)
	case tlDeqSwing:
		a.rw(lkHead, -1)
	case tlDeqUnlock:
		a.wr(lkHLock, -1)
	case tlDeqFree:
		a.wr(lkFree, -1)
		a.wr(lkHist, -1)

	// --- Valois ---
	case vEnqAlloc:
		allocAccess(s, &a, true)
	case vEnqReadTailWord:
		a.rd(lkTail, -1)
	case vEnqIncTail, vEnqWalkInc, vDeqIncHead, vDeqIncNext:
		a.rw(lkRefct, p.target.Idx)
	case vEnqValidateTail:
		a.rd(lkTail, -1)
	case vEnqReadNext, vEnqWalkReadNextWord, vEnqWalkValidate:
		a.rd(lkNext, p.tail.Idx)
	case vEnqIncProvisional, vEnqUndoProvisional:
		a.rw(lkRefct, p.node)
	case vEnqCASNext:
		a.rw(lkNext, p.tail.Idx)
	case vEnqAdvReadTail:
		a.rd(lkTail, -1)
	case vEnqAdvInc, vEnqAdvUndo:
		a.rw(lkRefct, p.advanceTarget().Idx)
	case vEnqAdvCAS:
		a.rw(lkTail, -1)
	case vEnqReleaseT:
		// Pure bookkeeping: sets up the next release cascade.
	case vEnqReleaseN, vDeqEmptyRelease, vDeqReleaseHeadTemp:
		a.wr(lkHist, -1) // completion; the cascade itself is the next event
	case vDeqReadHeadWord, vDeqValidateHead:
		a.rd(lkHead, -1)
	case vDeqReadNextWord, vDeqValidateNext:
		a.rd(lkNext, p.head.Idx)
	case vDeqIncProvisional, vDeqUndoProvisional:
		a.rw(lkRefct, p.next.Idx)
	case vDeqCASHead:
		a.rw(lkHead, -1)
	case vDeqReleaseOldHead, vDeqReleaseNextTemp, vDeqFailReleaseNext, vDeqFailReleaseHead:
		// Pure bookkeeping.
	case vDeqReadValue:
		a.rd(lkValue, p.next.Idx)
	case vRelease:
		// Decrement (always), plus — when the counter hits zero — a read of
		// the dying node's link and a free-list push. The zero test reads the
		// counter this event itself writes, so rw covers it.
		a.rw(lkRefct, p.relCur.Idx)
		a.rd(lkNext, p.relCur.Idx)
		a.wr(lkFree, -1)

	// --- epoch ---
	case epEnqPinLoad, epDeqPinLoad:
		a.rd(lkEpGlobal, -1)
	case epEnqPinPublish, epDeqPinPublish:
		a.wr(lkEpPin, int32(p.ID))
	case epEnqPinCheck, epDeqPinCheck:
		a.rd(lkEpGlobal, -1)
		a.rw(lkEpLimbo, int32(p.ID)) // opportunistic flush on success
		a.wr(lkFree, -1)
	case epEnqAlloc:
		allocAccess(s, &a, false)
	case epEnqReadTail, epEnqCheck:
		a.rd(lkTail, -1)
	case epEnqReadNext:
		a.rd(lkNext, p.tail.Idx)
	case epEnqCASNext:
		a.rw(lkNext, p.tail.Idx)
	case epEnqHelp, epEnqSwing:
		a.rw(lkTail, -1)
	case epEnqUnpin, epDeqUnpin, epDeqEmptyUnpin:
		a.wr(lkEpPin, int32(p.ID))
		a.wr(lkHist, -1)
	case epDeqReadHead:
		a.rd(lkHead, -1)
	case epDeqReadTail:
		a.rd(lkTail, -1)
	case epDeqReadNext:
		a.rd(lkNext, p.head.Idx)
	case epDeqCheck:
		a.rd(lkHead, -1) // the empty path completes later, at epDeqEmptyUnpin
	case epDeqHelp:
		a.rw(lkTail, -1)
	case epDeqReadValue:
		a.rd(lkValue, p.next.Idx)
	case epDeqCASHead:
		a.rw(lkHead, -1)
	case epDeqRetire:
		a.rd(lkEpGlobal, -1) // the keying read (shipped variant)
		a.rw(lkEpLimbo, int32(p.ID))
		a.wr(lkFree, -1) // stale-bucket free
	case epDeqAdvance:
		a.rd(lkEpGlobal, -1)
		for i := range s.Epoch.Parts {
			a.rd(lkEpPin, int32(i)) // the advance scan
		}
		a.wr(lkEpGlobal, -1)
		a.rw(lkEpLimbo, int32(p.ID)) // flush on success
		a.wr(lkFree, -1)

	// --- ring ---
	case rqEnqFAATail:
		a.rw(lkRTail, -1)
	case rqEnqLoadSlot:
		a.rd(lkRSlot, int32(s.Ring.remap(p.rpos)))
	case rqEnqCheck:
		a.rd(lkRHead, -1) // the unsafe-slot claimability probe
	case rqEnqCASSlot, rqDeqCASConsume, rqDeqCASAdvance:
		a.rw(lkRSlot, int32(s.Ring.remap(p.rpos)))
		if cpc == rqDeqCASConsume {
			a.wr(lkHist, -1)
		}
	case rqEnqResetThresh:
		a.rw(lkRThresh, -1)
		a.wr(lkHist, -1)
	case rqDeqThresh:
		a.rd(lkRThresh, -1)
	case rqDeqEmptyFast:
		a.wr(lkHist, -1)
	case rqDeqFAAHead:
		a.rw(lkRHead, -1)
	case rqDeqLoadSlot:
		a.rd(lkRSlot, int32(s.Ring.remap(p.rpos)))
	case rqDeqCheck, rqDeqEmptyCheck:
		// Pure local decisions over the loaded snapshots.
	case rqDeqLoadTail:
		a.rd(lkRTail, -1)
	case rqDeqCatchup:
		a.rw(lkRTail, -1)
		a.rd(lkRHead, -1) // the failed-CAS reload
	case rqDeqSpendEmpty, rqDeqSpendRetry:
		a.rw(lkRThresh, -1)
		a.wr(lkHist, -1)

	default:
		panic(fmt.Sprintf("explore: no access declaration for pc %d (algo %v)", cpc, p.Algo))
	}
	return a
}

package baseline_test

import (
	"testing"

	"msqueue/internal/baseline"
	"msqueue/internal/queue"
	"msqueue/internal/queuetest"
)

// TestBoundedConformance runs the queue.Bounded suite against this
// package's bounded implementations: Valois's arena-backed queue and
// Lamport's SPSC ring (the suite is sequential, so the ring's
// single-producer/single-consumer restriction is respected).
func TestBoundedConformance(t *testing.T) {
	t.Run("valois", func(t *testing.T) {
		queuetest.RunBounded(t, func(cap int) queue.Bounded[int] {
			// One extra node for the dummy, as the catalog allocates it.
			return queuetest.BoundedUint64(baseline.NewValois(cap + 1))
		}, queuetest.BoundedOptions{})
	})
	t.Run("lamport", func(t *testing.T) {
		queuetest.RunBounded(t, func(cap int) queue.Bounded[int] {
			return baseline.NewLamport[int](cap)
		}, queuetest.BoundedOptions{})
	})
}

// TestBoundedCycles runs the full/empty boundary property test. Both
// implementations pin the boundary at the first fill's observed count
// rather than the nominal capacity (Valois reserves a node for the dummy,
// Lamport's ring distinguishes full from empty by sacrificing a slot), so
// Exact stays off and the suite asserts the boundary never drifts.
func TestBoundedCycles(t *testing.T) {
	t.Run("valois", func(t *testing.T) {
		queuetest.RunBoundedCycles(t, func(cap int) queue.Bounded[int] {
			// One extra node for the dummy, as the catalog allocates it.
			return queuetest.BoundedUint64(baseline.NewValois(cap + 1))
		}, queuetest.BoundedCycleOptions{})
	})
	t.Run("lamport", func(t *testing.T) {
		queuetest.RunBoundedCycles(t, func(cap int) queue.Bounded[int] {
			return baseline.NewLamport[int](cap)
		}, queuetest.BoundedCycleOptions{})
	})
}

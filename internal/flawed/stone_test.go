package flawed_test

import (
	"testing"
	"time"

	"msqueue/internal/flawed"
	"msqueue/internal/inject"
	"msqueue/internal/linearizability"
)

// Sequentially, Stone's queue is a perfectly good FIFO queue — its defects
// are concurrency defects, which is what made them survive review until
// Michael & Scott's experiments.
func TestStoneSequentialFIFO(t *testing.T) {
	q := flawed.NewStone[int]()
	for i := 0; i < 100; i++ {
		q.Enqueue(i)
	}
	for i := 0; i < 100; i++ {
		if v, ok := q.Dequeue(); !ok || v != i {
			t.Fatalf("Dequeue = %d,%v, want %d", v, ok, i)
		}
	}
	if _, ok := q.Dequeue(); ok {
		t.Fatal("queue not empty")
	}
}

// TestStoneNonLinearizableEmptyObservation reproduces, deterministically,
// the violation the paper describes: "a slow enqueuer may cause a faster
// process to enqueue an item and subsequently observe an empty queue, even
// though the enqueued item has never been dequeued."
func TestStoneNonLinearizableEmptyObservation(t *testing.T) {
	q := flawed.NewStone[int]()
	gate := inject.NewGate(flawed.PointStoneAfterSwing)
	q.SetTracer(gate)

	slowDone := make(chan struct{})
	go func() {
		q.Enqueue(1) // swings Tail, then freezes before linking
		close(slowDone)
	}()
	<-gate.Entered()

	// A faster enqueuer completes entirely: its CAS on Tail succeeds (Tail
	// points at the slow enqueuer's node) and its link lands on that node.
	q.Enqueue(2)

	// The suffix is invisible from Head: the dequeue reports empty even
	// though enqueue(2) has completed and nothing was ever dequeued.
	if v, ok := q.Dequeue(); ok {
		t.Fatalf("Dequeue = %d, expected the flawed empty observation", v)
	}

	// That observable history is not linearizable; both checkers agree.
	h := linearizability.History{Ops: []linearizability.Op{
		{Process: 1, Kind: linearizability.Enq, Value: 2, Invoke: 1, Return: 2},
		{Process: 2, Kind: linearizability.DeqEmpty, Invoke: 3, Return: 4},
	}}
	vs := linearizability.Check(h)
	if len(vs) == 0 {
		t.Fatal("fast checker passed the flawed history")
	}
	if vs[0].Rule != "empty" {
		t.Fatalf("violation rule = %q, want \"empty\"", vs[0].Rule)
	}
	ok, err := linearizability.CheckExact(h)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("exact checker accepted the flawed history")
	}

	// After the slow enqueuer resumes, both items become visible: the queue
	// was never actually empty in any linearizable sense.
	gate.Release()
	<-slowDone
	for want := 1; want <= 2; want++ {
		v, ok := q.Dequeue()
		if !ok || v != want {
			t.Fatalf("Dequeue = %d,%v, want %d", v, ok, want)
		}
	}
}

// TestStoneTaggedABACorruptsQueue reproduces the race the paper reports
// finding experimentally: "a certain interleaving of a slow dequeue with
// faster enqueues and dequeues by other process(es) can cause an enqueued
// item to be lost permanently." The script is *identical* to
// core.TestMSTaggedABACounterPreventsStaleSwing — where the MS modification
// counters make the stale CAS fail — but on Stone's counter-less Head the
// CAS succeeds: the slow dequeuer re-delivers an already-dequeued value and
// redirects Head onto a freed node, detaching the live item behind it.
func TestStoneTaggedABACorruptsQueue(t *testing.T) {
	q := flawed.NewStoneTagged(8)
	q.Enqueue(1)
	q.Enqueue(2)

	gate := inject.NewGate(flawed.PointStoneBeforeHeadCAS)
	q.SetTracer(gate)

	type result struct {
		v  uint64
		ok bool
	}
	stalled := make(chan result, 1)
	go func() {
		v, ok := q.Dequeue() // reads Head=<slot X>, next=<node(1)>, freezes
		stalled <- result{v: v, ok: ok}
	}()
	<-gate.Entered()

	var delivered []uint64
	deq := func() {
		if v, ok := q.Dequeue(); ok {
			delivered = append(delivered, v)
		}
	}
	// Cycle slot X back to being Head: dequeue 1 (frees X), enqueue 3
	// (reuses X), dequeue 2 and 3 (Head ends on slot X again). Then enqueue
	// 4, which is linked behind the current dummy X.
	deq()        // 1
	q.Enqueue(3) // reuses slot X
	deq()        // 2
	deq()        // 3
	q.Enqueue(4) // the item that will be detached

	gate.Release()
	r := <-stalled
	if !r.ok || r.v != 1 {
		t.Fatalf("stalled dequeue = %d,%v; the flawed CAS should have succeeded and re-delivered 1", r.v, r.ok)
	}
	delivered = append(delivered, r.v)

	// Value 1 was delivered twice — the history is corrupt.
	count := map[uint64]int{}
	for _, v := range delivered {
		count[v]++
	}
	if count[1] != 2 {
		t.Fatalf("delivered %v: expected the duplicate delivery of 1", delivered)
	}

	// And item 4 is detached: Head now points to a freed node, so whatever
	// subsequent dequeues return, the FIFO contract is gone. Drain a
	// bounded number of operations and verify conservation is violated
	// (4 lost, or stale values re-delivered).
	seen4 := 0
	garbage := 0
	for i := 0; i < 8; i++ {
		v, ok := q.Dequeue()
		if !ok {
			break
		}
		switch {
		case v == 4:
			seen4++
		case count[v] > 0: // a value that had already been delivered
			garbage++
		}
	}
	if seen4 == 1 && garbage == 0 {
		t.Fatal("queue recovered cleanly; expected the lost/duplicated-item corruption")
	}
}

// TestStoneStalledEnqueuerBlocksDequeuerForever shows the "not
// non-blocking" half of the paper's verdict: past the unlinked suffix the
// dequeuer reports empty, but the enqueued items are unreachable until the
// slow process resumes — no amount of dequeuing makes progress on them.
func TestStoneStalledEnqueuerBlocksDequeuerForever(t *testing.T) {
	q := flawed.NewStone[int]()
	gate := inject.NewGate(flawed.PointStoneAfterSwing)
	q.SetTracer(gate)

	slowDone := make(chan struct{})
	go func() {
		q.Enqueue(1)
		close(slowDone)
	}()
	<-gate.Entered()

	for i := 2; i <= 5; i++ {
		q.Enqueue(i) // all linked behind the invisible suffix
	}
	deadline := time.Now().Add(20 * time.Millisecond)
	for time.Now().Before(deadline) {
		if v, ok := q.Dequeue(); ok {
			t.Fatalf("Dequeue = %d while the suffix was unlinked", v)
		}
	}

	gate.Release()
	<-slowDone
	for want := 1; want <= 5; want++ {
		v, ok := q.Dequeue()
		if !ok || v != want {
			t.Fatalf("Dequeue = %d,%v, want %d", v, ok, want)
		}
	}
}
